"""Property-based tests for the event engine and statistics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.sim.stats import RunningStats


class TestEventOrdering:
    @settings(max_examples=60, deadline=None)
    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=0,
            max_size=50,
        )
    )
    def test_events_always_fire_in_nondecreasing_time(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @settings(max_examples=40, deadline=None)
    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30
        ),
        cancel_mask=st.lists(st.booleans(), min_size=1, max_size=30),
    )
    def test_cancelled_events_never_fire(self, delays, cancel_mask):
        sim = Simulator()
        fired = []
        handles = []
        for i, delay in enumerate(delays):
            handles.append(sim.schedule(delay, lambda i=i: fired.append(i)))
        cancelled = set()
        for i, (handle, cancel) in enumerate(zip(handles, cancel_mask)):
            if cancel:
                handle.cancel()
                cancelled.add(i)
        sim.run()
        assert set(fired).isdisjoint(cancelled)
        assert len(fired) == len(delays) - len(cancelled & set(range(len(delays))))

    @settings(max_examples=40, deadline=None)
    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=20
        ),
        horizon=st.floats(min_value=0.0, max_value=100.0),
    )
    def test_run_until_respects_horizon(self, delays, horizon):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda: fired.append(sim.now))
        sim.run(until=horizon)
        assert all(t <= horizon for t in fired)
        assert sim.now == max([horizon] + fired)


class TestRunningStatsProperties:
    @settings(max_examples=80, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=100,
        )
    )
    def test_matches_direct_computation(self, values):
        stats = RunningStats()
        for value in values:
            stats.record(value)
        n = len(values)
        mean = sum(values) / n
        assert stats.count == n
        assert abs(stats.mean - mean) < 1e-6 * max(1.0, abs(mean))
        if n > 1:
            variance = sum((v - mean) ** 2 for v in values) / (n - 1)
            assert abs(stats.variance - variance) <= 1e-5 * max(1.0, variance)
        assert stats.minimum == min(values)
        assert stats.maximum == max(values)

    @settings(max_examples=60, deadline=None)
    @given(
        left=st.lists(st.floats(min_value=-1e3, max_value=1e3), max_size=50),
        right=st.lists(st.floats(min_value=-1e3, max_value=1e3), max_size=50),
    )
    def test_merge_equals_concatenation(self, left, right):
        merged = RunningStats()
        for value in left:
            merged.record(value)
        other = RunningStats()
        for value in right:
            other.record(value)
        merged.merge(other)
        combined = RunningStats()
        for value in left + right:
            combined.record(value)
        assert merged.count == combined.count
        assert abs(merged.mean - combined.mean) < 1e-9 * max(1.0, abs(combined.mean))
        assert abs(merged.variance - combined.variance) <= 1e-6 * max(
            1.0, combined.variance
        )
