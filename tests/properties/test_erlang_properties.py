"""Property-based tests for the blocking functions (hypothesis)."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.erlang import erlang_b, uaa_blocking

loads = st.floats(min_value=0.0, max_value=5_000.0, allow_nan=False)
capacities = st.integers(min_value=1, max_value=2_000)


class TestErlangBProperties:
    @given(load=loads, capacity=capacities)
    def test_bounded_in_unit_interval(self, load, capacity):
        value = erlang_b(load, capacity)
        assert 0.0 <= value <= 1.0

    @given(load=loads, capacity=capacities)
    def test_monotone_in_capacity(self, load, capacity):
        assert erlang_b(load, capacity + 1) <= erlang_b(load, capacity) + 1e-12

    @given(
        load=st.floats(min_value=0.1, max_value=1_000.0),
        delta=st.floats(min_value=0.01, max_value=100.0),
        capacity=capacities,
    )
    def test_monotone_in_load(self, load, delta, capacity):
        assert erlang_b(load, capacity) <= erlang_b(load + delta, capacity) + 1e-12

    @given(load=loads, capacity=capacities)
    def test_recursion_identity(self, load, capacity):
        """B(v, C) = v B(v, C-1) / (C + v B(v, C-1)) for C >= 1."""
        assume(load > 0)
        previous = erlang_b(load, capacity - 1)
        expected = load * previous / (capacity + load * previous)
        assert math.isclose(erlang_b(load, capacity), expected, rel_tol=1e-9)


class TestUaaProperties:
    @given(
        load=st.floats(min_value=1.0, max_value=2_000.0),
        capacity=st.integers(min_value=20, max_value=1_000),
    )
    @settings(max_examples=200)
    def test_uaa_tracks_exact_erlang(self, load, capacity):
        """UAA accuracy, stratified by the validity assumption v = O(C).

        Within the paper's operating regime (load up to ~4x capacity)
        the approximation is tight (2 % relative); in deep overload the
        asymptotics degrade gracefully (10 %)."""
        assume(load <= 10.0 * capacity)
        exact = erlang_b(load, capacity)
        approx = uaa_blocking(load, capacity)
        tolerance = 0.02 if load <= 4.0 * capacity else 0.10
        assert abs(approx - exact) <= max(tolerance * exact, 1e-9)

    @given(load=st.floats(min_value=0.0, max_value=5_000.0), capacity=capacities)
    def test_bounded(self, load, capacity):
        assert 0.0 <= uaa_blocking(load, capacity) <= 1.0
