"""Property tests for the sequential-trial analysis model.

``_sequential_trial_model`` enumerates the without-replacement retry
process exactly (given independent route rejections).  These tests
pit it against a direct Monte-Carlo simulation of the same process and
check its structural invariants on arbitrary inputs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.admission import _sequential_trial_model
from repro.sim.random_streams import StreamFactory

probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def trial_instances(draw):
    size = draw(st.integers(min_value=1, max_value=5))
    weights = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=10.0),
            min_size=size,
            max_size=size,
        )
    )
    if sum(weights) <= 0:
        weights = [1.0] * size
    rejections = draw(
        st.lists(probabilities, min_size=size, max_size=size)
    )
    max_attempts = draw(st.integers(min_value=1, max_value=size))
    return weights, rejections, max_attempts


class TestStructuralInvariants:
    @settings(max_examples=200, deadline=None)
    @given(instance=trial_instances())
    def test_outputs_are_probabilities(self, instance):
        weights, rejections, max_attempts = instance
        model = _sequential_trial_model(weights, rejections, max_attempts)
        assert 0.0 <= model.admission_probability <= 1.0 + 1e-12
        assert 1.0 - 1e-12 <= model.mean_attempts <= max_attempts + 1e-9
        for probability in model.attempt_probability:
            assert -1e-12 <= probability <= 1.0 + 1e-12

    @settings(max_examples=100, deadline=None)
    @given(instance=trial_instances())
    def test_first_attempt_probabilities_sum_to_one(self, instance):
        """Every request tries at least one destination."""
        weights, rejections, _ = instance
        model = _sequential_trial_model(weights, rejections, 1)
        positive = sum(w for w in weights if w > 0)
        total = sum(model.attempt_probability)
        assert abs(total - 1.0) < 1e-9 or positive == 0

    @settings(max_examples=100, deadline=None)
    @given(instance=trial_instances())
    def test_more_attempts_never_hurt(self, instance):
        weights, rejections, max_attempts = instance
        fewer = _sequential_trial_model(weights, rejections, max_attempts)
        more = _sequential_trial_model(
            weights, rejections, min(len(weights), max_attempts + 1)
        )
        assert more.admission_probability >= fewer.admission_probability - 1e-12

    @settings(max_examples=100, deadline=None)
    @given(
        size=st.integers(min_value=1, max_value=5),
        rejection=probabilities,
    )
    def test_uniform_symmetric_case_closed_form(self, size, rejection):
        """Equal weights, equal rejections p, R=K: reject prob = p^K."""
        model = _sequential_trial_model(
            [1.0] * size, [rejection] * size, size
        )
        assert model.admission_probability == (
            1.0 - rejection**size
        ) or abs(model.admission_probability - (1.0 - rejection**size)) < 1e-9


class TestAgainstMonteCarlo:
    @settings(max_examples=15, deadline=None)
    @given(
        instance=trial_instances(),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_matches_direct_simulation(self, instance, seed):
        weights, rejections, max_attempts = instance
        model = _sequential_trial_model(weights, rejections, max_attempts)
        rng = StreamFactory(seed).stream("mc")
        trials = 4000
        admitted = 0
        attempts_total = 0
        members = list(range(len(weights)))
        for _ in range(trials):
            remaining = list(members)
            attempts = 0
            success = False
            while attempts < max_attempts and remaining:
                candidate_weights = [weights[i] for i in remaining]
                if sum(candidate_weights) <= 0:
                    break
                choice = rng.weighted_choice(remaining, candidate_weights)
                attempts += 1
                remaining.remove(choice)
                if rng.uniform() >= rejections[choice]:
                    success = True
                    break
            admitted += 1 if success else 0
            attempts_total += attempts
        assert admitted / trials == model.admission_probability or abs(
            admitted / trials - model.admission_probability
        ) < 0.035
        assert abs(attempts_total / trials - model.mean_attempts) < 0.1
