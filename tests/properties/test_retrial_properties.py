"""Property-based tests for retrial policies and the backoff schedule.

Pins the boundary semantics the admission loop and the signalling
retransmitter rely on:

* ``CounterRetrialPolicy(max_attempts=1)`` means *no* retry, ever;
* ``AlwaysRetryPolicy`` is still bounded by the group size (every
  member tried at most once per request);
* ``ExponentialBackoff`` is deterministic given a seeded stream,
  capped at its maximum, and jittered within the declared band.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.retrial import (
    AlwaysRetryPolicy,
    CounterRetrialPolicy,
    ExponentialBackoff,
    NeverRetryPolicy,
)
from repro.sim.random_streams import StreamFactory

attempts = st.integers(min_value=1, max_value=50)
group_sizes = st.integers(min_value=1, max_value=20)


class TestCounterPolicyBoundaries:
    @given(attempts_made=attempts, group_size=group_sizes)
    def test_max_attempts_one_never_retries(self, attempts_made, group_size):
        policy = CounterRetrialPolicy(max_attempts=1)
        assert not policy.should_retry(
            attempts_made=attempts_made,
            distinct_tried=min(attempts_made, group_size),
            group_size=group_size,
        )

    @given(limit=st.integers(min_value=1, max_value=10), group_size=group_sizes)
    def test_attempts_bounded_by_limit_and_group(self, limit, group_size):
        """Simulate the admission loop: every attempt fails."""
        policy = CounterRetrialPolicy(max_attempts=limit)
        made = 1  # the loop always makes a first attempt
        while policy.should_retry(
            attempts_made=made,
            distinct_tried=min(made, group_size),
            group_size=group_size,
        ):
            made += 1
            assert made <= limit + group_size  # safety net
        assert made == min(limit, group_size)

    @given(attempts_made=attempts, group_size=group_sizes)
    def test_never_policy_refuses(self, attempts_made, group_size):
        assert not NeverRetryPolicy().should_retry(
            attempts_made=attempts_made,
            distinct_tried=min(attempts_made, group_size),
            group_size=group_size,
        )


class TestAlwaysRetryBoundedByGroup:
    @given(group_size=group_sizes)
    def test_stops_exactly_at_group_exhaustion(self, group_size):
        policy = AlwaysRetryPolicy()
        made = 1
        while policy.should_retry(
            attempts_made=made,
            distinct_tried=min(made, group_size),
            group_size=group_size,
        ):
            made += 1
            assert made <= group_size + 1  # safety net
        assert made == group_size

    @given(attempts_made=attempts, group_size=group_sizes)
    def test_retries_iff_members_remain(self, attempts_made, group_size):
        distinct = min(attempts_made, group_size)
        assert AlwaysRetryPolicy().should_retry(
            attempts_made=attempts_made,
            distinct_tried=distinct,
            group_size=group_size,
        ) == (distinct < group_size)


backoff_params = st.tuples(
    st.floats(min_value=1e-3, max_value=10.0),  # initial
    st.floats(min_value=1.0, max_value=4.0),  # factor
    st.floats(min_value=1.0, max_value=100.0),  # max multiplier
)


class TestExponentialBackoff:
    @given(params=backoff_params, attempt=st.integers(min_value=0, max_value=30))
    def test_capped_and_positive(self, params, attempt):
        initial, factor, max_multiplier = params
        cap = initial * max_multiplier
        backoff = ExponentialBackoff(initial, factor=factor, max_timeout_s=cap)
        timeout = backoff.timeout(attempt)
        assert 0.0 < timeout <= cap
        assert timeout == min(initial * factor**attempt, cap)

    @given(params=backoff_params)
    def test_monotone_without_jitter(self, params):
        initial, factor, max_multiplier = params
        backoff = ExponentialBackoff(
            initial, factor=factor, max_timeout_s=initial * max_multiplier
        )
        timeouts = [backoff.timeout(i) for i in range(12)]
        assert timeouts == sorted(timeouts)

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        jitter=st.floats(min_value=0.01, max_value=0.99),
        attempt=st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=50)
    def test_jitter_band_and_determinism(self, seed, jitter, attempt):
        def build():
            return ExponentialBackoff(
                0.05,
                factor=2.0,
                max_timeout_s=2.0,
                jitter=jitter,
                rng=StreamFactory(seed).stream("backoff"),
            )

        base = ExponentialBackoff(0.05, factor=2.0, max_timeout_s=2.0).timeout(
            attempt
        )
        first = build().timeout(attempt)
        # Deterministic: same seed, same stream name, same draw order.
        assert build().timeout(attempt) == first
        # Within the declared band around the un-jittered schedule.
        assert base * (1.0 - jitter) <= first <= base * (1.0 + jitter)

    @given(jitter=st.floats(min_value=0.01, max_value=0.99))
    def test_jitter_requires_rng(self, jitter):
        import pytest

        with pytest.raises(ValueError):
            ExponentialBackoff(0.05, jitter=jitter)
