"""Unit tests for the GDI baseline (repro.baselines.gdi)."""

import pytest

from repro.baselines.gdi import GDIController
from repro.flows.flow import FlowRequest
from repro.flows.group import AnycastGroup
from repro.flows.qos import QoSRequirement
from repro.network.topologies import line, mci_backbone
from repro.network.topology import Network


def make_request(source, group, flow_id=0, bandwidth=64_000.0):
    return FlowRequest(
        flow_id=flow_id,
        source=source,
        group=group,
        qos=QoSRequirement(bandwidth_bps=bandwidth),
    )


def build_diamond(capacity=64_000.0) -> Network:
    net = Network("diamond")
    for u, v in ((0, 1), (0, 2), (1, 3), (2, 3)):
        net.add_link(u, v, capacity_bps=capacity)
    return net


class TestAdmission:
    def test_admits_over_any_feasible_path(self):
        # Fixed shortest path 0-1-3 saturated; GDI must route via 0-2-3.
        net = build_diamond()
        group = AnycastGroup("A", (3,))
        controller = GDIController(net, group)
        net.link(0, 1).reserve("blocker", 64_000.0)
        result = controller.admit(make_request(0, group))
        assert result.admitted
        assert result.flow.path == (0, 2, 3)

    def test_prefers_minimum_hop_member(self):
        net = line(5)
        group = AnycastGroup("A", (0, 4))
        controller = GDIController(net, group)
        result = controller.admit(make_request(1, group))
        assert result.flow.destination == 0  # one hop vs three

    def test_rejects_when_no_feasible_path(self):
        net = line(3, capacity_bps=64_000.0)
        group = AnycastGroup("A", (2,))
        controller = GDIController(net, group)
        net.link(0, 1).reserve("b1", 64_000.0)
        net.link(1, 2).reserve("b2", 64_000.0)
        result = controller.admit(make_request(0, group))
        assert not result.admitted
        assert result.attempts == 1

    def test_reservation_held_on_found_path(self):
        net = build_diamond()
        group = AnycastGroup("A", (3,))
        controller = GDIController(net, group)
        result = controller.admit(make_request(0, group))
        for link in net.path_links(result.flow.path):
            assert link.holds(0)

    def test_source_in_group_is_admitted_for_free(self):
        net = line(3)
        group = AnycastGroup("A", (0, 2))
        controller = GDIController(net, group)
        result = controller.admit(make_request(0, group))
        assert result.admitted
        assert result.flow.path == (0,)
        assert net.total_reserved_bps() == 0.0

    def test_wrong_group_rejected(self):
        net = line(3)
        controller = GDIController(net, AnycastGroup("A", (0,)))
        with pytest.raises(ValueError):
            controller.admit(make_request(1, AnycastGroup("B", (2,))))

    def test_release(self):
        net = build_diamond()
        group = AnycastGroup("A", (3,))
        controller = GDIController(net, group)
        result = controller.admit(make_request(0, group))
        controller.release(result.flow)
        controller.release(result.flow)  # idempotent
        assert net.total_reserved_bps() == 0.0


class TestDominance:
    def test_gdi_admits_whenever_fixed_route_system_would(self):
        """GDI is an upper bound: any flow a DAC system admits, GDI admits."""
        from repro.core.system import SystemSpec, build_system
        from repro.flows.traffic import TrafficModel, WorkloadSpec
        from repro.network.topologies import MCI_GROUP_MEMBERS, MCI_SOURCES
        from repro.sim.random_streams import StreamFactory

        group = AnycastGroup("A", MCI_GROUP_MEMBERS)
        spec = WorkloadSpec(
            arrival_rate=30.0,
            sources=MCI_SOURCES,
            group=group,
            bandwidth_bps=64_000.0,
        )
        # Two identical networks fed the same request sequence.
        net_dac = mci_backbone(capacity_bps=5 * 64_000.0)
        net_gdi = mci_backbone(capacity_bps=5 * 64_000.0)
        dac = build_system(
            SystemSpec("ED", retrials=2), net_dac, MCI_SOURCES, group, StreamFactory(1)
        )
        gdi = GDIController(net_gdi, group)
        model = TrafficModel(spec, StreamFactory(2))
        dac_admitted = gdi_admitted = 0
        for request in model.take(300):
            if dac.admit(request).admitted:
                dac_admitted += 1
            if gdi.admit(request).admitted:
                gdi_admitted += 1
        # Without departures both networks only fill up; GDI's global
        # search must never do worse on the same workload.
        assert gdi_admitted >= dac_admitted


class TestCounters:
    def test_statistics(self):
        net = line(3, capacity_bps=64_000.0)
        group = AnycastGroup("A", (2,))
        controller = GDIController(net, group)
        controller.admit(make_request(0, group, flow_id=1))
        controller.admit(make_request(0, group, flow_id=2))  # rejected: full
        assert controller.requests_seen == 2
        assert controller.requests_admitted == 1
        assert controller.admission_ratio == pytest.approx(0.5)
        assert controller.mean_attempts == 1.0
