"""The three static gates, runnable from pytest.

``repro.lint`` is part of this repository and always runs.  ruff and
mypy are dev extras: when they are installed (as in CI's
``static-analysis`` job) the gates run for real; otherwise the tests
skip rather than fail, so a minimal environment can still run the
suite.
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[1]


def _module_available(name: str) -> bool:
    import importlib.util

    return importlib.util.find_spec(name) is not None


def test_repro_lint_clean():
    """The shipped package obeys its own determinism rules."""
    violations = lint_paths([REPO_ROOT / "src" / "repro"])
    assert violations == [], "\n".join(v.format() for v in violations)


def test_repro_lint_cli_clean():
    """The CLI entry point agrees with the library call."""
    result = subprocess.run(
        [sys.executable, "-m", "repro.lint", "src/repro"],
        cwd=str(REPO_ROOT),
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_ruff_clean():
    if shutil.which("ruff") is None:
        pytest.skip("ruff not installed (dev extra)")
    result = subprocess.run(
        ["ruff", "check", "src", "tests", "benchmarks", "scripts"],
        cwd=str(REPO_ROOT),
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_mypy_strict_clean():
    if not _module_available("mypy"):
        pytest.skip("mypy not installed (dev extra)")
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "src/repro"],
        cwd=str(REPO_ROOT),
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
