#!/bin/bash
cd /root/repo
python -m pytest tests/ 2>&1 | tee /root/repo/test_output.txt
python -m pytest benchmarks/ --benchmark-only 2>&1 | tee /root/repo/bench_output.txt
echo "ALL_FINAL_RUNS_DONE" > /root/repo/.final_runs_done
