#!/usr/bin/env python
"""Substrate microbenchmark runner with a committed perf baseline.

Measures the raw throughput of the simulation substrate — the event
engine (binary heap and calendar queue), the link reservation hot
path, the WD/D+B bottleneck scan and the reduced-load fixed point —
and writes the numbers to ``BENCH_substrate.json`` so the performance
trajectory is tracked PR over PR.

Usage::

    PYTHONPATH=src python scripts/bench.py                 # run, print table
    PYTHONPATH=src python scripts/bench.py --check         # gate vs baseline
    PYTHONPATH=src python scripts/bench.py --update        # refresh baseline
    PYTHONPATH=src python scripts/bench.py --quick         # CI smoke sizes

``--check`` compares a fresh run against the ``after`` section of the
committed ``BENCH_substrate.json`` and exits non-zero if any metric
regresses by more than ``--tolerance`` (default 20 %).  ``--update``
rolls the current run into the baseline: the previous ``after``
becomes ``before`` so the file always shows one PR-over-PR step, and a
timestamped summary of the new run is appended to the file's
``history`` list so the full performance trajectory survives updates
instead of being overwritten.

Every benchmark uses fixed seeds and deterministic workloads; the only
nondeterminism is wall-clock noise, mitigated by taking the best of
``--repeats`` runs.
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import random
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.analysis.fixedpoint import ReducedLoadSolver, RouteLoad  # noqa: E402
from repro.core.system import SystemSpec  # noqa: E402
from repro.flows.group import AnycastGroup  # noqa: E402
from repro.flows.traffic import WorkloadSpec  # noqa: E402
from repro.network.routing import RouteTable  # noqa: E402
from repro.network.state import LiveBandwidthView  # noqa: E402
from repro.network.topologies import (  # noqa: E402
    MCI_GROUP_MEMBERS,
    MCI_SOURCES,
    mci_backbone,
)
from repro.sim.engine import Simulator  # noqa: E402
from repro.sim.simulation import AnycastSimulation  # noqa: E402

DEFAULT_BASELINE = REPO_ROOT / "BENCH_substrate.json"


# ----------------------------------------------------------------------
# individual benchmarks: each returns (work_units, elapsed_seconds)
# ----------------------------------------------------------------------
def bench_engine_chain(n_events: int):
    """Serial chain: each event schedules the next (empty pending set)."""
    sim = Simulator()
    state = {"n": 0}

    def tick():
        state["n"] += 1
        if state["n"] < n_events:
            sim.schedule(1.0, tick)

    sim.schedule(1.0, tick)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    assert state["n"] == n_events
    return n_events, elapsed


def bench_engine_hold(n_events: int, population: int, queue: str):
    """Constant-population timer churn: the loss-network access pattern.

    ``population`` timers are pending at all times (like active flows
    holding departure events); every fired event schedules its
    replacement at a random future offset.  Exercises push/pop against
    a deep pending set, where comparison cost dominates.
    """
    rng = random.Random(20010405)
    sim = Simulator(queue=queue)

    def tick():
        sim.schedule(rng.random() * 10.0 + 1e-6, tick)

    for _ in range(population):
        sim.schedule(rng.random() * 10.0, tick)
    start = time.perf_counter()
    sim.run(max_events=n_events)
    elapsed = time.perf_counter() - start
    assert sim.events_executed == n_events
    return n_events, elapsed


def bench_reserve_release(cycles: int):
    """Reserve+release churn of 100 flows over the longest MCI route."""
    network = mci_backbone()
    table = RouteTable(network, 9, MCI_GROUP_MEMBERS)
    route = max(table.routes(), key=lambda r: r.distance)
    links = route.resolve_links(network)
    start = time.perf_counter()
    for _ in range(cycles):
        for i in range(100):
            if not network.reserve_links(links, i, 64_000.0):
                raise RuntimeError("reservation unexpectedly refused")
        for i in range(100):
            for link in links:
                link.release(i)
    elapsed = time.perf_counter() - start
    # one work unit = one flow reserved and released across the route
    return cycles * 100, elapsed


def bench_bottleneck_scan(scans: int):
    """WD/D+B's per-admission work: bottleneck scan of every route."""
    network = mci_backbone()
    view = LiveBandwidthView(network)
    tables = [
        RouteTable(network, source, MCI_GROUP_MEMBERS) for source in MCI_SOURCES
    ]
    routes = [route for table in tables for route in table.routes()]
    # Put some occupancy on the links so the scan reads realistic state.
    for i, route in enumerate(routes):
        network.reserve_links(route.resolve_links(network), ("bench", i), 64_000.0)
    sink = 0.0
    start = time.perf_counter()
    for _ in range(scans):
        for route in routes:
            sink += view.route_available_bps(route)
    elapsed = time.perf_counter() - start
    assert sink > 0
    return scans * len(routes), elapsed


def _mci_solver_inputs():
    network = mci_backbone()
    capacities = {
        (link.source, link.target): int(link.capacity_bps // 64_000)
        for link in network.links()
    }
    routes = []
    for source in MCI_SOURCES:
        table = RouteTable(network, source, MCI_GROUP_MEMBERS)
        for route in table.routes():
            links = tuple(zip(route.path, route.path[1:]))
            routes.append(RouteLoad(links=links, load_erlangs=50.0))
    return capacities, routes


def bench_fixedpoint_grid(points: int):
    """Reduced-load fixed point over a whole offered-load grid.

    Uses the vectorized ``solve_grid`` when the solver provides it,
    falling back to one scalar ``solve`` per grid point — exactly the
    before/after comparison the tentpole targets.
    """
    capacities, routes = _mci_solver_inputs()
    scales = [0.25 + 5.75 * i / max(1, points - 1) for i in range(points)]
    solver = ReducedLoadSolver(capacities, routes)
    solve_grid = getattr(solver, "solve_grid", None)
    start = time.perf_counter()
    if solve_grid is not None:
        solutions = solve_grid(scales)
    else:
        solutions = []
        for scale in scales:
            scaled = [
                RouteLoad(links=r.links, load_erlangs=r.load_erlangs * scale)
                for r in routes
            ]
            solutions.append(ReducedLoadSolver(capacities, scaled).solve())
    elapsed = time.perf_counter() - start
    assert len(solutions) == points
    assert all(0.0 <= b <= 1.0 for s in solutions for b in s.link_blocking.values())
    return points, elapsed


def bench_signaling_overhead(measure_s: float, loss_rate: float):
    """Admitted flows per 1000 control-plane messages (chaos scenario).

    Unlike the other benchmarks this measures a *deterministic* cost
    ratio, not wall-clock throughput: the thunk returns (admitted *
    1000, total control messages), so the reported "rate" is admitted
    flows per kilomessage.  Higher is better — protocol changes that
    inflate PATH/RESV/TEAR/refresh traffic (or retransmit more than
    necessary) per admitted flow push it down, and the regression gate
    catches that with zero run-to-run noise.
    """
    from repro.experiments.chaos import ChaosConfig, ChaosSimulation

    workload = WorkloadSpec(
        arrival_rate=60.0,
        sources=MCI_SOURCES,
        group=AnycastGroup("A", MCI_GROUP_MEMBERS),
        mean_lifetime_s=30.0,
    )
    simulation = ChaosSimulation(
        network_factory=mci_backbone,
        system_spec=SystemSpec("WD/D+B", retrials=2),
        workload=workload,
        chaos=ChaosConfig(loss_rate=loss_rate),
        warmup_s=5.0,
        measure_s=measure_s,
        seed=3,
    )
    result = simulation.run()
    control_messages = result.signaling_messages + result.refresh_messages
    assert result.admitted > 0 and control_messages > 0
    assert result.leaked_bps == 0.0
    return result.admitted * 1000, float(control_messages)


def bench_end_to_end(measure_s: float):
    """Events/sec of a complete WD/D+B run on the MCI backbone."""
    workload = WorkloadSpec(
        arrival_rate=180.0,
        sources=MCI_SOURCES,
        group=AnycastGroup("A", MCI_GROUP_MEMBERS),
        mean_lifetime_s=30.0,
    )
    simulation = AnycastSimulation(
        network_factory=mci_backbone,
        system_spec=SystemSpec("WD/D+B", retrials=2),
        workload=workload,
        warmup_s=10.0,
        measure_s=measure_s,
        seed=3,
    )
    start = time.perf_counter()
    simulation.run()
    elapsed = time.perf_counter() - start
    return simulation.simulator.events_executed, elapsed


# ----------------------------------------------------------------------
# harness
# ----------------------------------------------------------------------
def _suite(quick: bool):
    """(name, unit, thunk) triples; sizes shrink under ``--quick``."""
    scale = 0.2 if quick else 1.0

    def n(x):
        return max(1, int(x * scale))

    return [
        ("engine_chain", "events/s", lambda: bench_engine_chain(n(50_000))),
        (
            "engine_hold_heap",
            "events/s",
            lambda: bench_engine_hold(n(100_000), 10_000, "heap"),
        ),
        (
            "engine_hold_calendar",
            "events/s",
            lambda: bench_engine_hold(n(100_000), 10_000, "calendar"),
        ),
        (
            "reserve_release",
            "flows/s",
            lambda: bench_reserve_release(n(200)),
        ),
        (
            "bottleneck_scan",
            "routes/s",
            lambda: bench_bottleneck_scan(n(2_000)),
        ),
        (
            "fixedpoint_grid",
            "points/s",
            lambda: bench_fixedpoint_grid(n(40)),
        ),
        (
            "end_to_end_wddb",
            "events/s",
            lambda: bench_end_to_end(10.0 if quick else 40.0),
        ),
        (
            "signaling_loss0",
            "admit/kmsg",
            lambda: bench_signaling_overhead(10.0 if quick else 40.0, 0.0),
        ),
        (
            "signaling_loss5",
            "admit/kmsg",
            lambda: bench_signaling_overhead(10.0 if quick else 40.0, 0.05),
        ),
    ]


def run_suite(quick: bool = False, repeats: int = 3) -> dict:
    """Run every benchmark ``repeats`` times; keep the best rate."""
    metrics = {}
    for name, unit, thunk in _suite(quick):
        best = 0.0
        work = 0
        for _ in range(repeats):
            units, elapsed = thunk()
            rate = units / elapsed if elapsed > 0 else float("inf")
            if rate > best:
                best = rate
                work = units
        metrics[name] = {
            "rate": best,
            "unit": unit,
            "work_units": work,
        }
        print(f"  {name:<22} {best:>14,.0f} {unit}", file=sys.stderr)
    return metrics


def speedups(before: dict, after: dict) -> dict:
    """Per-metric after/before ratios plus their geometric mean."""
    ratios = {}
    for name, entry in after.items():
        if name in before and before[name]["rate"] > 0:
            ratios[name] = entry["rate"] / before[name]["rate"]
    if ratios:
        ratios["geomean"] = math.exp(
            sum(math.log(r) for r in ratios.values()) / len(ratios)
        )
    return ratios


def _meta() -> dict:
    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "system": platform.system(),
    }


def _history_entry(metrics: dict, ratios: dict) -> dict:
    """Compact timestamped summary of one ``--update`` run."""
    return {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "rates": {name: entry["rate"] for name, entry in metrics.items()},
        "geomean_speedup": ratios.get("geomean"),
        "meta": _meta(),
    }


def check_regression(
    metrics: dict, baseline_path: Path, tolerance: float, quick: bool = False
) -> int:
    """Compare ``metrics`` to the committed baseline's matching section.

    Quick-mode rates are not comparable to full-size ones (smaller
    workloads shift the fixed-overhead ratio per metric), so quick
    runs check against the baseline's ``after_quick`` section and
    full runs against ``after``.
    """
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; nothing to check", file=sys.stderr)
        return 0
    baseline = json.loads(baseline_path.read_text())
    if quick:
        reference = baseline.get("after_quick", {})
        if not reference:
            print(
                "baseline has no quick-mode section (after_quick); "
                "re-run scripts/bench.py --update to record one",
                file=sys.stderr,
            )
            return 0
    else:
        reference = baseline.get("after", baseline.get("metrics", {}))
    failures = []
    for name, entry in reference.items():
        if name not in metrics:
            continue
        floor = entry["rate"] * (1.0 - tolerance)
        actual = metrics[name]["rate"]
        status = "ok" if actual >= floor else "REGRESSED"
        print(
            f"  {name:<22} baseline {entry['rate']:>14,.0f}  "
            f"now {actual:>14,.0f}  [{status}]",
            file=sys.stderr,
        )
        if actual < floor:
            failures.append(name)
    if failures:
        print(
            f"throughput regression >{tolerance:.0%} in: {', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero on >tolerance regression vs the baseline",
    )
    parser.add_argument("--tolerance", type=float, default=0.20)
    parser.add_argument(
        "--update",
        action="store_true",
        help="roll this run into the baseline (previous after -> before)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE, help="baseline JSON path"
    )
    parser.add_argument(
        "--output", type=Path, default=None, help="also dump raw metrics JSON here"
    )
    args = parser.parse_args(argv)

    print("running substrate microbenchmarks...", file=sys.stderr)
    metrics = run_suite(quick=args.quick, repeats=args.repeats)

    if args.output is not None:
        args.output.write_text(
            json.dumps({"schema": 1, "metrics": metrics, "meta": _meta()}, indent=2)
            + "\n"
        )

    exit_code = 0
    if args.check:
        exit_code = check_regression(
            metrics, args.baseline, args.tolerance, quick=args.quick
        )

    if args.update and not args.quick:
        previous = {}
        if args.baseline.exists():
            previous = json.loads(args.baseline.read_text())
        before = previous.get("after", previous.get("metrics", {}))
        print("recording quick-mode reference for the CI gate...", file=sys.stderr)
        metrics_quick = run_suite(quick=True, repeats=args.repeats)
        ratios = speedups(before, metrics)
        document = {
            "schema": 2,
            "before": before,
            "after": metrics,
            "after_quick": metrics_quick,
            "speedup": ratios,
            "meta": _meta(),
            "history": previous.get("history", []) + [
                _history_entry(metrics, ratios)
            ],
        }
        args.baseline.write_text(json.dumps(document, indent=2) + "\n")
        print(f"baseline updated: {args.baseline}", file=sys.stderr)
    elif args.update:
        print("--update ignored under --quick (partial workloads)", file=sys.stderr)

    if not args.check and not args.update and args.output is None:
        print(json.dumps({"metrics": metrics}, indent=2))
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
