#!/usr/bin/env python
"""CDN mirror selection: the paper's motivating application.

The introduction motivates anycast with mirrored servers — an
e-commerce company publishes one anycast address backed by replicas in
several regions, and the network picks a replica per flow.  This
example builds a two-continent topology with three mirror sites and
compares every destination-selection algorithm on admission
probability and retrial overhead as client demand ramps up.

Run:  python examples/cdn_mirror_selection.py
"""

from repro.core.system import SystemSpec
from repro.experiments.report import format_table
from repro.flows.group import AnycastGroup
from repro.flows.traffic import WorkloadSpec
from repro.network.topology import Network
from repro.sim.simulation import run_simulation

#: 64 kbit/s media flows; links sized in whole "slots".
SLOT = 64_000.0


def build_cdn_network() -> Network:
    """Two regional rings joined by thin transatlantic links.

    Nodes 0-5 are the "EU" ring, 10-15 the "US" ring.  Mirrors sit at
    1 (EU), 11 and 14 (US); clients attach across both rings.  The
    inter-region links (5-10, 0-15) are the scarce resource, so
    destination selection decides how often traffic must cross them.
    """
    net = Network("cdn")
    ring = lambda base: [
        (base + i, base + (i + 1) % 6) for i in range(6)
    ]
    for u, v in ring(0) + ring(10):
        net.add_link(u, v, capacity_bps=60 * SLOT)
    # Thin transatlantic cables.
    net.add_link(5, 10, capacity_bps=20 * SLOT)
    net.add_link(0, 15, capacity_bps=20 * SLOT)
    return net


MIRRORS = (1, 11, 14)
CLIENTS = (2, 3, 4, 12, 13, 15)


def main() -> None:
    group = AnycastGroup("cdn-mirrors", MIRRORS)
    print("CDN mirror selection -- three mirrors, two regions")
    print("=" * 60)

    for demand in (1.0, 2.5, 5.0):
        workload = WorkloadSpec(
            arrival_rate=demand,
            sources=CLIENTS,
            group=group,
            mean_lifetime_s=120.0,
            bandwidth_bps=SLOT,
        )
        rows = []
        for algorithm in ("SP", "ED", "WD/D", "WD/D+H", "WD/D+B", "GDI"):
            result = run_simulation(
                network_factory=build_cdn_network,
                system_spec=SystemSpec(algorithm, retrials=2),
                workload=workload,
                warmup_s=300.0,
                measure_s=1200.0,
                seed=11,
            )
            rows.append(
                [
                    algorithm,
                    f"{result.admission_probability:.4f}",
                    f"{result.mean_retrials:.3f}",
                ]
            )
        print()
        print(
            format_table(
                ["algorithm", "admission probability", "avg retrials"],
                rows,
                title=f"client demand = {demand:g} flows/s",
            )
        )

    print()
    print(
        "Reading the table: SP funnels every client to its nearest\n"
        "mirror and congests the local ring; the weighted algorithms\n"
        "spread flows across regions and approach the idealized GDI."
    )


if __name__ == "__main__":
    main()
