#!/usr/bin/env python
"""Quickstart: admit anycast flows on the paper's MCI backbone.

Builds the exact experimental setup of the paper (19-node MCI
backbone, anycast group at routers {0,4,8,12,16}, Poisson requests
from the odd-ID routers) and runs the recommended system <WD/D+H,2>:
Weighted Distribution by route Distance and local admission History,
with up to two destinations tried per request.

Run:  python examples/quickstart.py
"""

import repro


def main() -> None:
    print("Distributed Admission Control for anycast flows -- quickstart")
    print("=" * 62)

    for arrival_rate in (10.0, 25.0, 40.0):
        result = repro.quick_run(
            algorithm="WD/D+H",
            retrials=2,
            arrival_rate=arrival_rate,
            warmup_s=300.0,
            measure_s=1200.0,
            seed=7,
        )
        print(
            f"lambda={arrival_rate:5.1f}/s  "
            f"AP={result.admission_probability:.4f} "
            f"[{result.ap_ci_low:.4f}, {result.ap_ci_high:.4f}]  "
            f"avg retrials={result.mean_retrials:.3f}  "
            f"({result.requests} requests measured)"
        )

    print()
    print("Destination usage at lambda=40/s (share of admitted flows):")
    result = repro.quick_run(
        "WD/D+H", retrials=2, arrival_rate=40.0,
        warmup_s=300.0, measure_s=1200.0, seed=7,
    )
    for destination, share in result.destination_share.items():
        print(f"  router {destination:>2}: {share:6.1%}")


if __name__ == "__main__":
    main()
