#!/usr/bin/env python
"""Measure the true signalling cost of retrials with RSVP-lite.

Section 4.5 frames retrial control as an admission-probability vs
overhead trade-off, with overhead "directly proportional to ...
resource reservation messages and admission delay".  The paper's
simulation counts retrials; this example goes one level deeper and
drives the hop-by-hop PATH/RESV message model, reporting actual
message counts and reservation latencies per admission attempt.

Run:  python examples/signaling_overhead.py
"""

from repro.experiments.report import format_table
from repro.flows.group import AnycastGroup
from repro.network.routing import RouteTable
from repro.network.topologies import MCI_GROUP_MEMBERS, mci_backbone
from repro.signaling.rsvp import SignalledReservationEngine
from repro.sim.engine import Simulator
from repro.sim.random_streams import StreamFactory


def main() -> None:
    group = AnycastGroup("A", MCI_GROUP_MEMBERS)
    source = 9
    network = mci_backbone(capacity_bps=8 * 64_000.0)
    simulator = Simulator()
    engine = SignalledReservationEngine(simulator, network)
    table = RouteTable(network, source, group.members)
    rng = StreamFactory(5).stream("selection")

    print("RSVP-lite signalling from router 9 on the MCI backbone")
    print("(8 anycast slots per link, 5 ms propagation per hop)")
    print("=" * 62)

    outcomes = []

    def admit_with_retrials(flow_id: int, max_attempts: int):
        """Drive the DAC loop on top of asynchronous signalling."""
        tried = []

        def attempt():
            candidates = [m for m in group.members if m not in tried]
            destination = rng.choice(candidates)
            tried.append(destination)
            route = table.route_to(destination)

            def on_done(outcome):
                if outcome.success or len(tried) >= max_attempts:
                    outcomes.append((flow_id, outcome.success, len(tried)))
                else:
                    attempt()

            engine.reserve(route, (flow_id, destination), 64_000.0, on_done)

        attempt()

    # Offer a burst of 120 flows; capacity fits only a fraction.
    for flow_id in range(120):
        simulator.schedule(flow_id * 0.01, lambda f=flow_id: admit_with_retrials(f, 2))
    simulator.run()

    admitted = sum(1 for _, success, _ in outcomes if success)
    attempts = sum(tries for _, _, tries in outcomes)
    rows = [
        ["flows offered", str(len(outcomes))],
        ["flows admitted", str(admitted)],
        ["destination attempts", str(attempts)],
        ["signalling messages", str(engine.total_messages)],
        ["messages per attempt", f"{engine.mean_messages:.2f}"],
        ["mean reservation latency", f"{engine.mean_latency_s * 1000:.2f} ms"],
    ]
    print(format_table(["metric", "value"], rows))
    print()
    print(
        "Every retrial costs another PATH/RESV round trip, which is why\n"
        "the paper prefers selection algorithms that need few retrials\n"
        "(Figure 7) and caps R at 2 in its recommended systems."
    )


if __name__ == "__main__":
    main()
