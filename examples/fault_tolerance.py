#!/usr/bin/env python
"""Anycast admission control under link failures.

The paper assumes a fault-free network but notes its approach "can be
extended to deal with the situation when this assumption does not
hold" (Section 3).  This example exercises that extension: fiber cuts
strike the MCI backbone at random, flows crossing a failing cable are
torn down, and the DAC retrial mechanism routes around the damage by
trying other anycast group members.

Run:  python examples/fault_tolerance.py
"""

from repro.core.system import SystemSpec
from repro.experiments.report import format_table
from repro.flows.group import AnycastGroup
from repro.flows.traffic import WorkloadSpec
from repro.network.topologies import MCI_GROUP_MEMBERS, MCI_SOURCES, mci_backbone
from repro.sim.simulation import AnycastSimulation, FaultConfig


def run(retrials: int, fault_config, seed: int = 21):
    workload = WorkloadSpec(
        arrival_rate=25.0,
        sources=MCI_SOURCES,
        group=AnycastGroup("A", MCI_GROUP_MEMBERS),
        mean_lifetime_s=60.0,
    )
    simulation = AnycastSimulation(
        network_factory=mci_backbone,
        system_spec=SystemSpec("WD/D+H", retrials=retrials),
        workload=workload,
        warmup_s=300.0,
        measure_s=1500.0,
        seed=seed,
        fault_config=fault_config,
    )
    result = simulation.run()
    return result, simulation


def main() -> None:
    print("Fiber cuts on the MCI backbone — <WD/D+H,R> under faults")
    print("=" * 62)
    print("(each cable: mean 10 min between failures, mean 1 min repair)")
    print()

    faults = FaultConfig(
        mean_time_to_failure_s=600.0, mean_time_to_repair_s=60.0
    )
    rows = []
    for label, retrials, config in (
        ("healthy network, R=2", 2, None),
        ("faulty network,  R=1", 1, faults),
        ("faulty network,  R=2", 2, faults),
        ("faulty network,  R=5", 5, faults),
    ):
        result, simulation = run(retrials, config)
        rows.append(
            [
                label,
                f"{result.admission_probability:.4f}",
                f"{result.mean_retrials:.3f}",
                str(simulation.flows_dropped_by_faults),
            ]
        )
    print(
        format_table(
            ["scenario", "admission probability", "avg retrials", "flows cut"],
            rows,
        )
    )
    print()
    print(
        "Failures cost admission probability twice: directly (flows cut\n"
        "mid-life) and indirectly (routes through down cables refuse new\n"
        "flows).  Raising the retrial limit R recovers much of the second\n"
        "effect — the anycast group itself acts as the failover mechanism."
    )


if __name__ == "__main__":
    main()
