#!/usr/bin/env python
"""The full algorithm tournament: every selector, every metric.

Runs all seven destination-selection systems — the paper's three (ED,
WD/D+H, WD/D+B), both baselines (SP, GDI), the distance-only ablation
(WD/D) and this library's hybrid (WD/D+H+B) — on the same workload and
scores them on four axes:

* admission probability (the paper's headline metric),
* retrial overhead (Figure 7's cost metric),
* per-source fairness (Jain index; does anyone get starved?),
* congestion concentration (Gini of link utilizations; who funnels?).

Run:  python examples/algorithm_tournament.py
"""

from repro.core.system import SystemSpec
from repro.experiments.diagnostics import congestion_report
from repro.experiments.report import format_table
from repro.flows.group import AnycastGroup
from repro.flows.traffic import WorkloadSpec
from repro.network.topologies import MCI_GROUP_MEMBERS, MCI_SOURCES, mci_backbone
from repro.sim.simulation import AnycastSimulation

ALGORITHMS = ("SP", "ED", "WD/D", "WD/D+H", "WD/D+B", "WD/D+H+B", "GDI")


def main() -> None:
    # The paper's lambda=35 operating point, with lifetimes rescaled
    # 180 s -> 60 s and the rate tripled (admission probability depends
    # only on the offered load lambda/mu) so steady state arrives 3x
    # sooner.
    workload = WorkloadSpec(
        arrival_rate=105.0,
        sources=MCI_SOURCES,
        group=AnycastGroup("A", MCI_GROUP_MEMBERS),
        mean_lifetime_s=60.0,
    )
    print("Algorithm tournament on the MCI backbone (paper lambda = 35/s)")
    print("=" * 70)

    rows = []
    for algorithm in ALGORITHMS:
        simulation = AnycastSimulation(
            network_factory=mci_backbone,
            system_spec=SystemSpec(algorithm, retrials=2),
            workload=workload,
            warmup_s=400.0,
            measure_s=1600.0,
            seed=35,
        )
        result = simulation.run()
        congestion = congestion_report(result)
        rows.append(
            [
                algorithm,
                f"{result.admission_probability:.4f}",
                f"{result.mean_retrials:.3f}",
                f"{result.fairness_index:.4f}",
                f"{congestion.gini:.3f}",
                f"{congestion.peak_utilization:.0%}",
            ]
        )
    print(
        format_table(
            ["system", "AP", "retrials", "Jain fairness", "util gini", "peak link"],
            rows,
        )
    )
    print()
    print(
        "How to read this: GDI bounds what is achievable; SP shows the\n"
        "cost of ignoring the anycast choice (low AP, unfair, funnelled\n"
        "links).  The weighted DAC systems close most of the gap with\n"
        "purely local information — the paper's thesis — and the hybrid\n"
        "WD/D+H+B squeezes out a little more at the lowest overhead."
    )


if __name__ == "__main__":
    main()
