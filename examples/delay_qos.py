#!/usr/bin/env python
"""Delay QoS via the WFQ mapping (the paper's Section 6 extension).

The paper's admission control reserves bandwidth only, but its final
remarks argue that with rate-based schedulers (WFQ, Virtual Clock) an
end-to-end *delay* bound maps directly to a bandwidth reservation.
This example does exactly that: interactive flows demand a delay bound,
the Parekh-Gallager WFQ formula converts it into a per-route rate, and
the ordinary DAC machinery admits or rejects.

Run:  python examples/delay_qos.py
"""

from repro.core.system import SystemSpec, build_system
from repro.experiments.report import format_table
from repro.flows.flow import FlowRequest
from repro.flows.group import AnycastGroup
from repro.flows.qos import QoSRequirement, delay_bound_to_bandwidth_wfq
from repro.network.routing import RouteTable
from repro.network.topologies import (
    LINK_CAPACITY_BPS,
    MCI_GROUP_MEMBERS,
    MCI_SOURCES,
    mci_backbone,
)
from repro.sim.random_streams import StreamFactory


def main() -> None:
    group = AnycastGroup("A", MCI_GROUP_MEMBERS)
    network = mci_backbone()

    print("Delay bound -> WFQ rate (burst 12 kbit, packets 12 kbit):")
    print("=" * 60)
    rows = []
    for delay_ms in (500.0, 250.0, 100.0, 50.0, 25.0):
        rate = delay_bound_to_bandwidth_wfq(
            delay_bound_s=delay_ms / 1000.0,
            burst_bits=12_000.0,
            max_packet_bits=12_000.0,
            hop_count=4,
            link_speeds_bps=[LINK_CAPACITY_BPS] * 4,
        )
        rows.append([f"{delay_ms:g} ms", f"{rate / 1000.0:,.1f} kbit/s"])
    print(format_table(["end-to-end delay bound", "required WFQ rate"], rows))

    print()
    print("Admitting 200 delay-bounded flows on the MCI backbone")
    print("(WD/D+H with R=2; links carry the 20% anycast share):")
    print("=" * 60)
    rows = []
    for delay_ms in (500.0, 100.0, 50.0):
        system = build_system(
            SystemSpec("WD/D+H", retrials=2),
            mci_backbone(),
            MCI_SOURCES,
            group,
            StreamFactory(3),
        )
        admitted = 0
        for flow_id in range(200):
            source = MCI_SOURCES[flow_id % len(MCI_SOURCES)]
            # Resolve the bound against the worst-case fixed route of
            # this source (hop counts come from the route table).
            table = RouteTable(network, source, group.members)
            worst_hops = max(route.distance for route in table.routes())
            qos = QoSRequirement(
                bandwidth_bps=64_000.0, delay_bound_s=delay_ms / 1000.0
            ).with_route(worst_hops, [LINK_CAPACITY_BPS] * worst_hops)
            request = FlowRequest(
                flow_id=flow_id, source=source, group=group, qos=qos
            )
            if system.admit(request).admitted:
                admitted += 1
        effective = QoSRequirement(
            bandwidth_bps=64_000.0, delay_bound_s=delay_ms / 1000.0
        ).with_route(4, [LINK_CAPACITY_BPS] * 4)
        rows.append(
            [
                f"{delay_ms:g} ms",
                f"{effective.effective_bandwidth_bps / 1000.0:,.1f} kbit/s",
                f"{admitted}/200",
            ]
        )
    print(
        format_table(
            ["delay bound", "effective bandwidth", "admitted"], rows
        )
    )
    print()
    print(
        "Tighter delay bounds inflate the effective bandwidth each flow\n"
        "reserves, so fewer concurrent flows fit — delay QoS reduces to\n"
        "the bandwidth admission problem the DAC procedure already solves."
    )


if __name__ == "__main__":
    main()
