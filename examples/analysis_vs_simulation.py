#!/usr/bin/env python
"""Validate the fixed-point analysis against simulation (Appendix A).

Reproduces the methodology of the paper's Tables 1 and 2: compute the
admission probability of <ED,1> and SP analytically (reduced-load
fixed point with Erlang-B link blocking) and by discrete-event
simulation, then show both side by side.  Also demonstrates the
documented extension of the analysis to retrials (<ED,2>).

Run:  python examples/analysis_vs_simulation.py
"""

from repro.analysis.admission import analyze_system
from repro.core.system import SystemSpec
from repro.experiments.report import format_table
from repro.flows.group import AnycastGroup
from repro.flows.traffic import WorkloadSpec
from repro.network.topologies import MCI_GROUP_MEMBERS, MCI_SOURCES, mci_backbone
from repro.sim.simulation import run_simulation


def compare(spec: SystemSpec, rates) -> list[list[str]]:
    network = mci_backbone()
    rows = []
    for rate in rates:
        workload = WorkloadSpec(
            arrival_rate=rate,
            sources=MCI_SOURCES,
            group=AnycastGroup("A", MCI_GROUP_MEMBERS),
        )
        analysis = analyze_system(network, workload, spec)
        simulation = run_simulation(
            network_factory=mci_backbone,
            system_spec=spec,
            workload=workload,
            warmup_s=1000.0,
            measure_s=3000.0,
            seed=17,
        )
        rows.append(
            [
                f"{rate:g}",
                f"{analysis.admission_probability:.6f}",
                f"{simulation.admission_probability:.6f}",
                f"{abs(analysis.admission_probability - simulation.admission_probability):.6f}",
            ]
        )
    return rows


def main() -> None:
    rates = (5.0, 20.0, 35.0, 50.0)
    headers = ["lambda", "analysis", "simulation", "|gap|"]

    for spec, title in (
        (SystemSpec("ED", retrials=1), "Table 1: system <ED,1>"),
        (SystemSpec("SP"), "Table 2: system SP"),
        (SystemSpec("ED", retrials=2), "Extension: system <ED,2> (retrial model)"),
    ):
        print(format_table(headers, compare(spec, rates), title=title))
        print()

    print(
        "The analysis assumes link independence and Poisson thinning\n"
        "(Appendix A.2); the small gaps above are the paper's own\n"
        "justification for those approximations."
    )


if __name__ == "__main__":
    main()
