#!/usr/bin/env python
"""Capacity planning with the fixed-point analysis — no simulation.

The paper's appendix computes admission probability analytically;
this example turns that around into the two questions an operator of
the system actually asks:

1. *How much demand can my deployment absorb* before AP drops below a
   service-level target?  (admission-region boundary)
2. *How much anycast capacity per link* do I need for a given demand?
   (the "20 % of link bandwidth" knob of Section 5.1)

Both answers come from bisection on the reduced-load analysis and take
milliseconds — no discrete-event simulation involved.

Run:  python examples/capacity_planning.py
"""

from repro.analysis.planning import max_arrival_rate, required_capacity
from repro.core.system import SystemSpec
from repro.experiments.report import format_table
from repro.flows.group import AnycastGroup
from repro.flows.traffic import WorkloadSpec
from repro.network.topologies import (
    MCI_GROUP_MEMBERS,
    MCI_SOURCES,
    mci_backbone,
)


def main() -> None:
    group = AnycastGroup("A", MCI_GROUP_MEMBERS)
    workload = WorkloadSpec(
        arrival_rate=20.0,  # template; the planner varies it
        sources=MCI_SOURCES,
        group=group,
    )

    print("Q1: sustainable demand at an AP service-level target")
    print("(MCI backbone, 20% anycast share = 312 slots/link, <ED,2>)")
    print("=" * 62)
    rows = []
    for target in (0.99, 0.95, 0.90, 0.80):
        rate = max_arrival_rate(
            mci_backbone(),
            workload,
            SystemSpec("ED", retrials=2),
            target_ap=target,
            rate_upper_bound=300.0,
            tolerance=0.25,  # quarter-request/s precision is plenty
        )
        rows.append([f"{target:.0%}", f"{rate:.1f} requests/s"])
    print(format_table(["AP target", "max arrival rate"], rows))

    print()
    print("Q2: per-link anycast slots needed for a fixed demand")
    print("(lambda = 35 requests/s, AP target sweep, <ED,2>)")
    print("=" * 62)
    demand = WorkloadSpec(
        arrival_rate=35.0, sources=MCI_SOURCES, group=group
    )
    rows = []
    for target in (0.90, 0.95, 0.99):
        slots = required_capacity(
            lambda capacity: mci_backbone(capacity_bps=capacity),
            demand,
            SystemSpec("ED", retrials=2),
            target_ap=target,
            max_slots=5000,
        )
        share = slots * demand.bandwidth_bps / 100e6
        rows.append([f"{target:.0%}", str(slots), f"{share:.1%} of a 100 Mb/s cable"])
    print(format_table(["AP target", "slots per link", "equivalent share"], rows))
    print()
    print(
        "The paper reserves 312 slots (20%) per link; the second table\n"
        "shows what that budget buys — and what tightening the SLA to\n"
        "three nines would cost."
    )


if __name__ == "__main__":
    main()
